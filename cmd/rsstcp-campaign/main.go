// Command rsstcp-campaign sweeps a parameter space on a bounded worker pool
// and prints per-cell aggregates (replicate mean, stddev, percentiles).
//
// The classic flags (-bw, -rtt, -rq, -ifq, -loss, -alg, -flows) declare the
// legacy seven-dimension grid. New-style flags open the generic axis engine:
// -setpoints, -ticks and the repeatable -axis flag add sweep dimensions the
// fixed grid cannot express, and -metrics selects and orders the output
// columns from the pluggable metric registry. Using any new-style flag
// switches the output to the generic report (axis columns + chosen metrics).
//
// Results are byte-identical for any -workers value: replicate seeds are
// derived from the base seed and each cell's parameters, never from the
// schedule.
//
// Campaigns execute streaming: each finished replicate folds into its
// cell's running summaries and is dropped, so memory scales with the cell
// count, not the run count — large grids (10⁵–10⁶ runs) export aggregates
// only. Pass -retain-runs to keep every raw replicate in the generic
// report's JSON. The legacy fixed-grid output always retains runs (its
// format predates streaming); use the generic flags for very large sweeps.
//
// Examples:
//
//	rsstcp-campaign
//	rsstcp-campaign -bw 10,100,500 -rtt 20ms,60ms -alg standard,restricted -replicates 3
//	rsstcp-campaign -loss 0,0.001,0.01 -duration 10s -workers 4 -json out.json -csv out.csv
//	rsstcp-campaign -bw 100 -rtt 20ms,60ms -ifq 100 -alg restricted \
//	    -setpoints 0.5,0.7,0.9 -metrics throughput_mbps,fairness,t90_util_s
//	rsstcp-campaign -bw 100 -rtt 60ms -ifq 100 -alg restricted \
//	    -axis tick=5ms,10ms,20ms -axis mss=1448,8948 -metrics throughput_mbps,collapses
//
// Dynamic workloads sweep too: -loads, -arrivals and -fsizes open the
// flow-lifecycle axes (offered load, arrival process, transfer-size
// distribution), with completion-time metrics to match:
//
//	rsstcp-campaign -bw 100 -rtt 60ms -alg standard,restricted \
//	    -loads 0.4,0.8 -fsizes exp:100k,pareto:1.2:4k:10M \
//	    -metrics fct_mean,fct_p99,slowdown_mean,flows_done
//
// Topologies sweep too: -topo sweeps stock presets (parking-lot,
// reverse-congested, ...), repeatable -hop flags pin a custom hop chain on
// every cell, -rev makes the reverse channel a real queued link, and the
// hops/rbw/aqm axes open multi-hop splits, reverse-bottleneck rates and AQM
// disciplines as sweep dimensions:
//
//	rsstcp-campaign -topo parking-lot -alg standard,restricted \
//	    -axis rbw=5 -axis aqm=droptail,red \
//	    -metrics throughput_mbps,hop_drops_max,rev_drops
//	rsstcp-campaign -hop rate=100,delay=10ms,queue=250 -hop rate=50,delay=20ms,queue=120 \
//	    -rev rate=5,queue=50 -alg restricted -metrics throughput_mbps,rev_drops
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rsstcp"
	"rsstcp/internal/campaign"
	"rsstcp/internal/telemetry"
	"rsstcp/internal/unit"
)

func main() {
	var (
		bws        = flag.String("bw", "10,100,500", "bottleneck bandwidths in Mbps (comma list)")
		rtts       = flag.String("rtt", "20ms,60ms", "round-trip delays (comma list of durations)")
		rqs        = flag.String("rq", "250", "router queue sizes in packets (comma list)")
		ifqs       = flag.String("ifq", "50,100", "txqueuelen values in packets (comma list)")
		losses     = flag.String("loss", "0", "bottleneck loss probabilities (comma list)")
		algs       = flag.String("alg", "standard,restricted", "algorithms (comma list)")
		flows      = flag.String("flows", "1", "concurrent flow counts (comma list)")
		replicates = flag.Int("replicates", 2, "replicates per cell")
		duration   = flag.Duration("duration", 10*time.Second, "virtual run length per replicate")
		seed       = flag.Uint64("seed", 1, "base seed for replicate derivation")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonPath   = flag.String("json", "", "write full results (runs + aggregates) as JSON to this file, or - for stdout")
		csvPath    = flag.String("csv", "", "write the aggregate table as CSV to this file, or - for stdout")
		quiet      = flag.Bool("quiet", false, "suppress progress reporting on stderr")

		// New-style flags: the generic axis/metric engine.
		metrics    = flag.String("metrics", "", "metric columns to report, in order (comma list; known: "+strings.Join(rsstcp.MetricNames(), ",")+")")
		setpoints  = flag.String("setpoints", "", "RSS IFQ set-point fractions to sweep (comma list; adds a 'setpoint' axis)")
		ticks      = flag.String("ticks", "", "RSS control periods to sweep (comma list of durations; adds a 'tick' axis)")
		loads      = flag.String("loads", "", "offered-load fractions of the bottleneck to sweep under dynamic arrivals (comma list; adds a 'load' axis)")
		arrivalsF  = flag.String("arrivals", "", "flow arrival processes to sweep, e.g. poisson:50 or mmpp:10:200:500ms (comma list; adds an 'arrivals' axis)")
		fsizes     = flag.String("fsizes", "", "dynamic transfer-size distributions to sweep, e.g. exp:100k or pareto:1.2:4k:10M (comma list; adds an 'fsize' axis)")
		topoNames  = flag.String("topo", "", "topology presets to sweep (comma list of "+strings.Join(rsstcp.TopologyPresets(), ",")+"; adds a 'topo' axis)")
		rev        = flag.String("rev", "", "real reverse channel for every cell as rate=Mbps[,delay=D][,queue=N] (adds an 'rbw' axis value)")
		retainRuns = flag.Bool("retain-runs", false, "keep every raw replicate in the generic report (memory grows with run count)")

		// Sharding flags: cell-aligned multi-process campaigns. Output is
		// byte-identical at any shard count, balanced or not.
		shardsF  = flag.String("shards", "1", "split the campaign across this many child processes, one contiguous cell span each (auto = runtime.NumCPU())")
		balance  = flag.Bool("balance", false, "weight the shard partition by a per-cell cost model (duration x flows/churn x hops) instead of cell count")
		shardK   = flag.Int("shard", -1, "child mode: run only this shard (0-based) of -shards and emit a shard report instead of campaign output")
		shardOut = flag.String("shard-out", "-", "child mode: write the shard report JSON here (- for stdout)")

		// Observability flags.
		metricsAddr   = flag.String("metrics-addr", "", "serve campaign self-metrics as OpenMetrics on this address (e.g. 127.0.0.1:9137)")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep the metrics endpoint alive this long after the campaign finishes (for scrapers)")
		anomalyDir    = flag.String("anomaly-dir", "", "dump each anomalous replicate's flight-recorder timeline as JSONL into this directory")
		web100        = flag.Bool("web100", false, "attach per-flow Web100 snapshots to retained replicates (generic report, implies per-run detail)")
		embedTel      = flag.Bool("telemetry", false, "embed the self-metrics snapshot into the JSON report (generic report; makes output wall-clock-dependent)")

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	var extraAxes []rsstcp.Axis
	flag.Func("axis", "extra sweep axis as name=v1,v2 (repeatable; names: "+strings.Join(rsstcp.StockAxisNames(), ",")+")", func(s string) error {
		name, vals, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=v1,v2, got %q", s)
		}
		a, err := rsstcp.ParseAxis(name, split(vals))
		if err != nil {
			return err
		}
		extraAxes = append(extraAxes, a)
		return nil
	})
	var customHops []rsstcp.Hop
	flag.Func("hop", "add one forward hop to a custom topology for every cell, as rate=Mbps,delay=D,queue=N[,aqm=red][,loss=P][,reorder=P:D][,dup=P] (repeatable; adds a single-valued 'topo' axis)", func(s string) error {
		h, err := rsstcp.ParseHop(s)
		if err != nil {
			return err
		}
		customHops = append(customHops, h)
		return nil
	})
	flag.Parse()

	// "-shards auto" resolves on each machine independently; parent and
	// children run on the same machine, so they derive the same count (and
	// with it the same partition).
	shardsN, shardsAuto := parseShards(*shardsF)
	shardNote := ""
	if shardsAuto {
		shardNote = fmt.Sprintf(" (auto: %d CPUs)", shardsN)
	}
	if *balance {
		shardNote += ", balanced"
	}

	stopProfiling, err := telemetry.StartProfiling(*pprofAddr, *cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProfiling()

	grid := rsstcp.Grid{
		RouterQueues: parseInts(*rqs, "rq"),
		TxQueueLens:  parseInts(*ifqs, "ifq"),
		LossRates:    parseFloats(*losses, "loss"),
		FlowCounts:   parseInts(*flows, "flows"),
		Replicates:   *replicates,
		Duration:     *duration,
		BaseSeed:     *seed,
	}
	for _, mbps := range parseInts(*bws, "bw") {
		grid.Bandwidths = append(grid.Bandwidths, unit.Bandwidth(mbps)*unit.Mbps)
	}
	for _, s := range split(*rtts) {
		d, err := time.ParseDuration(s)
		if err != nil {
			fatalf("bad -rtt value %q: %v", s, err)
		}
		grid.RTTs = append(grid.RTTs, d)
	}
	for _, s := range split(*algs) {
		grid.Algorithms = append(grid.Algorithms, rsstcp.Algorithm(s))
	}

	if *setpoints != "" {
		axisOrDie(&extraAxes, "setpoint", *setpoints)
	}
	if *ticks != "" {
		axisOrDie(&extraAxes, "tick", *ticks)
	}

	// Churn flags: each compiles to one of the flow-lifecycle axes. They
	// must precede the grid's alg axis (which then decorates the dynamic
	// flow template), so they are collected separately and stacked ahead of
	// the grid axes below.
	var churnAxes []rsstcp.Axis
	if *loads != "" {
		axisOrDie(&churnAxes, "load", *loads)
	}
	if *arrivalsF != "" {
		axisOrDie(&churnAxes, "arrivals", *arrivalsF)
	}
	if *fsizes != "" {
		axisOrDie(&churnAxes, "fsize", *fsizes)
	}

	// Topology flags: -topo sweeps stock presets, repeatable -hop builds one
	// custom hop chain for every cell; either becomes a leading "topo" axis
	// so the reverse/AQM axes that follow may refine it. -rev rides the
	// custom topology directly, or becomes a single-valued "rbw" axis.
	if *topoNames != "" && len(customHops) > 0 {
		fatalf("-topo and -hop are mutually exclusive; presets and custom hop chains cannot mix")
	}
	var topoAxes []rsstcp.Axis
	customTopo := len(customHops) > 0
	if customTopo {
		t := rsstcp.NewTopology(customHops...)
		if *rev != "" {
			r, err := rsstcp.ParseReverse(*rev)
			if err != nil {
				fatalf("%v", err)
			}
			t.Reverse = r
		}
		topoAxes = append(topoAxes, rsstcp.TopologyAxis("custom", *t))
	}
	if *topoNames != "" {
		a, err := rsstcp.ParseAxis("topo", split(*topoNames))
		if err != nil {
			fatalf("%v", err)
		}
		topoAxes = append(topoAxes, a)
	}
	if *rev != "" && !customTopo {
		r, err := rsstcp.ParseReverse(*rev)
		if err != nil {
			fatalf("%v", err)
		}
		extraAxes = append(extraAxes, rsstcp.ReverseAxis(r))
	}

	// Self-metrics are always collected (the cost is two clock reads per
	// run); the registry exists whenever anything wants to read them.
	self := campaign.NewSelfMetrics()
	opts := rsstcp.CampaignOptions{
		Workers:       *workers,
		RetainRuns:    *retainRuns || *web100,
		ExportWeb100:  *web100,
		Self:          self,
		BalanceShards: *balance,
	}
	var reg *telemetry.Registry
	if *metricsAddr != "" || *embedTel {
		reg = telemetry.NewRegistry()
		self.Register(reg)
	}
	var closeMetrics func()
	if *metricsAddr != "" {
		bound, closeFn, err := reg.Serve(*metricsAddr)
		if err != nil {
			fatalf("%v", err)
		}
		closeMetrics = closeFn
		if !*quiet {
			fmt.Fprintf(os.Stderr, "campaign: metrics on http://%s/metrics\n", bound)
		}
	}
	if *anomalyDir != "" {
		if err := os.MkdirAll(*anomalyDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		opts.AnomalySink = func(cellKey string, rep int, events []byte) {
			name := fmt.Sprintf("%s__r%d.jsonl", sanitizeKey(cellKey), rep)
			if err := os.WriteFile(filepath.Join(*anomalyDir, name), events, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rsstcp-campaign: anomaly dump: %v\n", err)
			}
		}
	}
	progress := func(runs int) {
		if *quiet {
			return
		}
		start := time.Now()
		opts.Progress = func(done, total int) {
			line := fmt.Sprintf("\rcampaign: %d/%d runs", done, total)
			if elapsed := time.Since(start); elapsed > 0 && done > 0 {
				rate := float64(done) / elapsed.Seconds()
				eta := time.Duration(float64(total-done) / rate * float64(time.Second))
				line += fmt.Sprintf("  %.0f runs/s  ETA %v", rate, eta.Round(time.Second))
			}
			fmt.Fprint(os.Stderr, line)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
		fmt.Fprintf(os.Stderr, "campaign: %d runs on %d workers\n",
			runs, effectiveWorkers(*workers))
	}
	// finish prints the self-metrics epilogue and holds the metrics endpoint
	// open for scrapers before the process exits. A shard-merging parent runs
	// no simulations itself, so it prints the shard tail instead of the
	// run-rate epilogue.
	finish := func() {
		if !*quiet && self.Runs.Value() > 0 {
			build, run, fold := self.Phases()
			fmt.Fprintf(os.Stderr,
				"campaign: %d runs in %v (%.0f runs/s, %.2gM events/s); phases build %v, run %v, fold %v\n",
				self.Runs.Value(), self.Elapsed().Round(time.Millisecond),
				self.RunsPerSec(), self.EventsPerSec()/1e6,
				build.Round(time.Millisecond), run.Round(time.Millisecond), fold.Round(time.Millisecond))
			if slow := self.SlowestCells(); len(slow) > 0 {
				if len(slow) > 3 {
					slow = slow[:3]
				}
				line := "campaign: slowest cells:"
				for _, cw := range slow {
					line += fmt.Sprintf(" %s (%v)", cw.Key, cw.Wall.Round(time.Millisecond))
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
		if !*quiet && self.Shards() > 0 {
			walls := self.ShardWalls()
			var max, sum time.Duration
			for _, w := range walls {
				sum += w
				if w > max {
					max = w
				}
			}
			var mean time.Duration
			if len(walls) > 0 {
				mean = sum / time.Duration(len(walls))
			}
			fmt.Fprintf(os.Stderr,
				"campaign: %d shards%s; shard wall max %v, mean %v, imbalance %.2f\n",
				self.Shards(), shardNote, max.Round(time.Millisecond),
				mean.Round(time.Millisecond), self.ShardImbalance())
		}
		if closeMetrics != nil {
			if *metricsLinger > 0 {
				if !*quiet {
					fmt.Fprintf(os.Stderr, "campaign: metrics endpoint lingering %v\n", *metricsLinger)
				}
				time.Sleep(*metricsLinger)
			}
			closeMetrics()
		}
	}

	if len(extraAxes) > 0 || len(topoAxes) > 0 || len(churnAxes) > 0 || *metrics != "" {
		// Generic path: legacy flags compile to stock axes, new flags
		// stack more dimensions and choose the metric columns — no
		// campaign-internal edits involved.
		//
		// Reconcile the grid's seven default axes with the generic flags.
		// An -axis naming a legacy dimension supersedes that dimension's
		// default axis (the legacy flag and -axis together are ambiguous
		// and rejected), and the matchup axis replaces the flow list, so
		// it cannot coexist with the grid's alg/flows axes. Legacy flags
		// conveniently share their axis names (-rtt sets axis "rtt").
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		gridAxes := grid.Axes()
		for _, a := range extraAxes {
			if rsstcp.IsLegacyAxis(a.Name) {
				if explicit[a.Name] {
					fatalf("-%s and -axis %s=... both sweep the %q axis; use one", a.Name, a.Name, a.Name)
				}
				gridAxes = dropAxes(gridAxes, a.Name)
			}
		}
		if hasAxis(extraAxes, "matchup") {
			if explicit["alg"] || explicit["flows"] {
				fatalf("-axis matchup=... replaces the flow list; drop the -alg and -flows flags")
			}
			gridAxes = dropAxes(gridAxes, "alg", "flows")
		}
		// An explicit topology overrides the dumbbell's path fields, so the
		// grid's path axes come off the plan (and explicitly set path flags
		// are rejected — their cell labels would lie about what ran).
		if len(topoAxes) > 0 || hasAxis(extraAxes, "topo") {
			for _, n := range []string{"bw", "rtt", "rq", "loss"} {
				if explicit[n] {
					fatalf("a topology (-topo, -hop or -axis topo=...) replaces the path; drop the -%s flag", n)
				}
			}
			gridAxes = dropAxes(gridAxes, "bw", "rtt", "rq", "loss")
		}
		// A dynamic workload replaces the default single static flow, so the
		// grid's flows axis comes off the plan — unless -flows was set on
		// purpose, which keeps that many static flows as background load.
		if len(churnAxes) > 0 && !explicit["flows"] {
			gridAxes = dropAxes(gridAxes, "flows")
		}
		builderOpts := []rsstcp.CampaignOpt{
			rsstcp.SweepAxis(topoAxes...),
			rsstcp.SweepAxis(churnAxes...),
			rsstcp.SweepAxis(gridAxes...),
			rsstcp.SweepAxis(extraAxes...),
			rsstcp.Replicates(*replicates),
			rsstcp.Duration(*duration),
			rsstcp.BaseSeed(*seed),
		}
		if *metrics != "" {
			builderOpts = append(builderOpts, rsstcp.MeasureNamed(split(*metrics)...))
		}
		c := rsstcp.NewCampaign(builderOpts...)
		plan, err := c.Plan()
		if err == nil {
			err = plan.Validate()
		}
		if err != nil {
			fatalf("%v", err)
		}
		if *shardK >= 0 {
			shardChild(plan, shardsN, *shardK, *shardOut, opts)
			finish()
			return
		}
		var rep *rsstcp.Report
		if shardsN > 1 {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "campaign: %d runs across %d shard processes%s\n",
					plan.Runs(), shardsN, shardNote)
			}
			rep, err = shardParent(plan, shardsN, self)
		} else {
			progress(plan.Runs())
			rep, err = c.Run(opts)
		}
		if err != nil {
			fatalf("%v", err)
		}
		if *embedTel {
			rep.Telemetry = reg.Snapshot()
		}
		render(*jsonPath, *csvPath, rep.WriteJSON, rep.WriteCSV, func(w io.Writer) error {
			return rep.Table().Render(w)
		})
		finish()
		return
	}

	// Legacy path: fixed grid in, fixed columns out (byte-compatible with
	// the original engine).
	if *shardK >= 0 {
		// The legacy Result shape exposes raw runs, so shard reports must
		// carry them for the merging parent.
		opts.RetainRuns = true
		shardChild(grid.Plan(), shardsN, *shardK, *shardOut, opts)
		finish()
		return
	}
	var res *rsstcp.CampaignResult
	if shardsN > 1 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "campaign: %d runs across %d shard processes%s\n",
				grid.Runs(), shardsN, shardNote)
		}
		rep, err := shardParent(grid.Plan(), shardsN, self)
		if err != nil {
			fatalf("%v", err)
		}
		if res, err = campaign.ResultFromReport(grid, rep); err != nil {
			fatalf("%v", err)
		}
	} else {
		progress(grid.Runs())
		var err error
		if res, err = rsstcp.RunCampaign(grid, opts); err != nil {
			fatalf("%v", err)
		}
	}
	if *embedTel {
		// The legacy fixed-grid JSON shape is byte-pinned, so the snapshot
		// goes to stderr as an OpenMetrics exposition instead.
		if err := reg.WriteOpenMetrics(os.Stderr); err != nil {
			fatalf("%v", err)
		}
	}
	render(*jsonPath, *csvPath, res.WriteJSON, res.WriteCSV, func(w io.Writer) error {
		return res.Table().Render(w)
	})
	finish()
}

// shardChild runs one shard of the plan and emits the wire-format shard
// report: the child half of a multi-process campaign.
func shardChild(p rsstcp.Plan, shards, shard int, outPath string, opts rsstcp.CampaignOptions) {
	rep, err := campaign.ExecuteShard(p, shards, shard, opts)
	if err != nil {
		fatalf("%v", err)
	}
	writeTo(outPath, rep.WriteJSON)
}

// shardParent re-invokes this binary once per shard — same flags, plus the
// child-mode coordinates — collects the shard reports from the children's
// stdout, and merges them into the exact report an unsharded run produces.
// Every child re-derives the identical plan (and, under -balance, the
// identical weighted partition) from the identical flags, so the partition
// needs no coordination beyond the (shards, shard) pair. Each child's wall
// time is recorded on self, so the epilogue reports the partition's
// measured imbalance.
func shardParent(p rsstcp.Plan, shards int, self *campaign.SelfMetrics) (*rsstcp.Report, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	self.SetShards(shards)
	reports := make([]*campaign.ShardReport, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for k := 0; k < shards; k++ {
		go func(k int) {
			defer wg.Done()
			// Later flags win, so appended overrides silence the child's
			// human output and strip per-process observability endpoints
			// (children would collide on ports and profile paths).
			args := append(append([]string{}, os.Args[1:]...),
				"-shard", strconv.Itoa(k),
				"-shard-out", "-",
				"-quiet",
				"-json", "", "-csv", "",
				"-metrics-addr", "", "-pprof", "",
				"-cpuprofile", "", "-memprofile", "")
			cmd := exec.Command(exe, args...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = os.Stderr
			start := time.Now()
			err := cmd.Run()
			self.ObserveShardWall(time.Since(start))
			if err != nil {
				errs[k] = fmt.Errorf("shard %d: %w", k, err)
				return
			}
			r, err := campaign.ReadShardReport(&out)
			if err != nil {
				errs[k] = fmt.Errorf("shard %d: %w", k, err)
				return
			}
			reports[k] = r
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return campaign.MergeShards(p, reports)
}

// sanitizeKey maps a cell key ("bw=100Mbps/rtt=60ms/...") to a filename-safe
// slug: axis separators become double underscores, anything outside
// [A-Za-z0-9._=-] becomes a dash.
func sanitizeKey(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r == '/':
			b.WriteString("__")
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '=', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// render dispatches the selected exports; with no export flags (or when both
// went to files), the aggregate table goes to stdout.
func render(jsonPath, csvPath string, writeJSON, writeCSV, table func(io.Writer) error) {
	wrote := false
	if jsonPath != "" {
		writeTo(jsonPath, writeJSON)
		wrote = true
	}
	if csvPath != "" {
		writeTo(csvPath, writeCSV)
		wrote = true
	}
	if !wrote || (jsonPath != "-" && csvPath != "-") {
		if err := table(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}
}

func axisOrDie(axes *[]rsstcp.Axis, name, csv string) {
	a, err := rsstcp.ParseAxis(name, split(csv))
	if err != nil {
		fatalf("%v", err)
	}
	*axes = append(*axes, a)
}

func hasAxis(axes []rsstcp.Axis, name string) bool {
	for _, a := range axes {
		if a.Name == name {
			return true
		}
	}
	return false
}

func dropAxes(axes []rsstcp.Axis, names ...string) []rsstcp.Axis {
	var out []rsstcp.Axis
	for _, a := range axes {
		drop := false
		for _, n := range names {
			if a.Name == n {
				drop = true
			}
		}
		if !drop {
			out = append(out, a)
		}
	}
	return out
}

// parseShards resolves the -shards flag: a literal count, or "auto" for
// runtime.NumCPU(). Children propagate the flag verbatim and re-resolve it
// on the same machine, so parent and children agree on the count.
func parseShards(s string) (n int, auto bool) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "auto") {
		return runtime.NumCPU(), true
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		fatalf("bad -shards value %q: want a count or auto", s)
	}
	return n, false
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return rsstcp.DefaultCampaignWorkers()
}

func writeTo(path string, write func(io.Writer) error) {
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := write(w); err != nil {
		fatalf("%v", err)
	}
}

func split(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s, flagName string) []int {
	var out []int
	for _, part := range split(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fatalf("bad -%s value %q: %v", flagName, part, err)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s, flagName string) []float64 {
	var out []float64
	for _, part := range split(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fatalf("bad -%s value %q: %v", flagName, part, err)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rsstcp-campaign: "+format+"\n", args...)
	os.Exit(1)
}
