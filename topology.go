package rsstcp

import (
	"time"

	"rsstcp/internal/campaign"
	"rsstcp/internal/experiment"
)

// Topology-layer types, re-exported so callers describe multi-hop paths,
// congested reverse channels and per-flow routes without importing internal
// packages. The zero Options still runs the paper's dumbbell: PathConfig
// compiles into a one-hop topology with an ideal reverse wire.
type (
	// Topology is a declarative hop chain plus one reverse channel.
	Topology = experiment.Topology
	// Hop is one store-and-forward stage: rate, one-way delay, queue,
	// discipline (drop-tail or RED), and optional loss/reorder/duplicate
	// injectors.
	Hop = experiment.Hop
	// Reverse describes the ACK channel: zero Rate is the ideal pure-delay
	// wire; a non-zero Rate queues ACKs behind a real serializer.
	Reverse = experiment.Reverse
	// Route pins a flow to a contiguous hop span (zero value = whole path).
	Route = experiment.Route
	// HopStats is one hop's aggregate counters after a run.
	HopStats = experiment.HopStats
	// QueueDiscipline selects a hop queue's admission policy.
	QueueDiscipline = experiment.QueueDiscipline
)

// Queue disciplines.
const (
	// DropTailQueue is the classic FIFO tail-drop router queue (default).
	DropTailQueue = experiment.DiscDropTail
	// REDQueue is Random Early Detection.
	REDQueue = experiment.DiscRED
)

// NewTopology composes an explicit forward path from hops, with the ideal
// reverse wire; chain WithReverse for a real (rate-limited, queued) ACK
// channel:
//
//	topo := rsstcp.NewTopology(
//		rsstcp.HopAt(100*rsstcp.Mbps, 10*time.Millisecond, 250),
//		rsstcp.HopAt(50*rsstcp.Mbps, 20*time.Millisecond, 120),
//	).WithReverse(5*rsstcp.Mbps, 0, 50)
//	res, err := rsstcp.Run(rsstcp.Options{Topology: topo})
func NewTopology(hops ...Hop) *Topology {
	return &Topology{Hops: hops}
}

// HopAt builds a drop-tail hop from the three load-bearing parameters;
// set Discipline/Loss/ReorderP/DuplicateP on the result for more.
func HopAt(rate Bandwidth, delay time.Duration, queue int) Hop {
	return Hop{Rate: rate, Delay: delay, Queue: queue}
}

// HopSpan builds a route over n hops starting at first (n <= 0 means through
// the end of the path).
func HopSpan(first, n int) Route {
	return Route{FirstHop: first, Hops: n}
}

// CrossFlow builds a cross-traffic flow pinned to a hop span: background
// load that campaign per-flow axes leave untouched. A parking-lot middle-hop
// cross flow is CrossFlow(rsstcp.Standard, rsstcp.HopSpan(1, 1), time.Second).
func CrossFlow(alg Algorithm, r Route, start time.Duration) Flow {
	return Flow{Alg: alg, Cross: true, Route: r, StartAt: start}
}

// TopologyPresets lists the named stock topologies ("dumbbell",
// "parking-lot", "reverse-congested") accepted by ApplyPreset, the CLIs'
// -topo flags, and the "topo" campaign axis.
func TopologyPresets() []string { return experiment.TopologyPresets() }

// ApplyPreset imprints a named stock topology (and, for parking-lot, its
// cross traffic) on the options.
func ApplyPreset(opts *Options, name string) error {
	return experiment.ApplyPreset(opts, name)
}

// ParseHop parses a CLI -hop value ("rate=100,delay=10ms,queue=250[,aqm=red]
// [,loss=0.01][,reorder=0.02:2ms][,dup=0.001]", rate in Mbps).
func ParseHop(s string) (Hop, error) { return experiment.ParseHop(s) }

// ParseReverse parses a CLI -rev value ("rate=10[,delay=30ms][,queue=50]",
// rate in Mbps).
func ParseReverse(s string) (Reverse, error) { return experiment.ParseReverse(s) }

// SweepTopology adds a single-valued "topo" axis from an explicit topology,
// labeled for the cell key — how a campaign pins a custom hop graph built
// with NewTopology (stock presets sweep by name via Sweep("topo", ...)).
func SweepTopology(label string, t Topology) CampaignOpt {
	return SweepAxis(TopologyAxis(label, t))
}

// TopologyAxis builds the single-valued "topo" axis SweepTopology wraps;
// CLIs that assemble axis lists by hand use it directly.
func TopologyAxis(label string, t Topology) Axis {
	return campaign.AxisTopologyValue(label, t)
}

// ReverseAxis builds a single-valued "rbw" axis from a full reverse-channel
// description (rate + delay + queue) — the campaign form of a CLI -rev flag.
func ReverseAxis(r Reverse) Axis {
	return campaign.AxisReverseValue(r)
}
