package rsstcp_test

import (
	"testing"
	"time"

	"rsstcp"
)

func TestRunQuickstart(t *testing.T) {
	res, err := rsstcp.Run(rsstcp.Options{
		Path:     rsstcp.PaperPath(),
		Flows:    []rsstcp.Flow{{Alg: rsstcp.Restricted}},
		Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput")
	}
	if res.Alg != rsstcp.Restricted {
		t.Errorf("Alg = %q, want restricted", res.Alg)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	_, err := rsstcp.Run(rsstcp.Options{Flows: []rsstcp.Flow{{Alg: "nope"}}})
	if err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestBuildExposesComponents(t *testing.T) {
	s, err := rsstcp.Build(rsstcp.Options{
		Flows:    []rsstcp.Flow{{Alg: rsstcp.Restricted}},
		Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Flows[0].Sender == nil || s.Flows[0].NIC == nil || s.Flows[0].RSS == nil {
		t.Error("scenario components not exposed")
	}
	res := s.Run()
	if res.Duration != time.Second {
		t.Errorf("Duration = %v, want 1s", res.Duration)
	}
}

func TestDefaultGainsFollowPaperRule(t *testing.T) {
	c := rsstcp.DefaultCritical()
	g := rsstcp.DefaultGains()
	if g.Kp != 0.33*c.Kc {
		t.Errorf("Kp = %v, want 0.33*Kc = %v", g.Kp, 0.33*c.Kc)
	}
	if g.Ti != time.Duration(0.5*float64(c.Tc)) {
		t.Errorf("Ti = %v, want 0.5*Tc", g.Ti)
	}
}

func TestPaperPathConstants(t *testing.T) {
	p := rsstcp.PaperPath()
	if p.Bottleneck != 100*rsstcp.Mbps || p.RTT != 60*time.Millisecond || p.TxQueueLen != 100 {
		t.Errorf("PaperPath = %+v", p)
	}
}

func TestFigure1Facade(t *testing.T) {
	fig, err := rsstcp.Figure1(rsstcp.PaperPath(), 3*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Seconds) != 4 {
		t.Errorf("rows = %d, want 4", len(fig.Seconds))
	}
	if fig.Table() == nil {
		t.Error("nil table")
	}
}

func TestRunCampaignFacade(t *testing.T) {
	res, err := rsstcp.RunCampaign(rsstcp.Grid{
		RTTs:       []time.Duration{20 * time.Millisecond, 60 * time.Millisecond},
		Algorithms: []rsstcp.Algorithm{rsstcp.Standard, rsstcp.Restricted},
		Duration:   time.Second,
	}, rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.ThroughputMbps.Mean <= 0 {
			t.Errorf("cell %s made no progress", c.Cell.Key())
		}
	}
	if rsstcp.DefaultCampaignWorkers() < 1 {
		t.Error("DefaultCampaignWorkers < 1")
	}
}

func TestThroughputFacade(t *testing.T) {
	thr, err := rsstcp.Throughput(rsstcp.PaperPath(), rsstcp.Standard, 3*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 || thr > 100*rsstcp.Mbps {
		t.Errorf("throughput = %v outside (0, 100Mbps]", thr)
	}
}
