package rsstcp_test

import (
	"fmt"
	"log"
	"testing"
	"time"

	"rsstcp"
)

// ExampleRun is the godoc quick start: one restricted-slow-start flow on the
// paper's Section 4 path. Restricted slow-start exists to eliminate
// send-stalls, so the measured flow reports zero.
func ExampleRun() {
	res, err := rsstcp.Run(rsstcp.Options{
		Path:     rsstcp.PaperPath(),
		Flows:    []rsstcp.Flow{{Alg: rsstcp.Restricted}},
		Duration: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alg=%s stalls=%d moving-data=%v\n", res.Alg, res.Stalls, res.Throughput > 0)
	// Output: alg=restricted stalls=0 moving-data=true
}

// ExampleRunCampaign sweeps the legacy fixed-field grid: algorithms × RTTs,
// with cells in canonical order and parameter-derived keys.
func ExampleRunCampaign() {
	res, err := rsstcp.RunCampaign(rsstcp.Grid{
		RTTs:       []time.Duration{20 * time.Millisecond, 60 * time.Millisecond},
		Algorithms: []rsstcp.Algorithm{rsstcp.Restricted},
		Duration:   time.Second,
	}, rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Cells {
		fmt.Println(c.Cell.Key())
	}
	// Output:
	// bw=100Mbps/rtt=20ms/rq=250/ifq=100/loss=0/alg=restricted/flows=1
	// bw=100Mbps/rtt=60ms/rq=250/ifq=100/loss=0/alg=restricted/flows=1
}

// ExampleNewCampaign composes a sweep the fixed grid cannot express: the
// RSS set point becomes an axis and fairness a reported metric.
func ExampleNewCampaign() {
	rep, err := rsstcp.NewCampaign(
		rsstcp.Sweep("setpoint", 0.5, 0.9),
		rsstcp.Sweep("alg", rsstcp.Restricted),
		rsstcp.Measure(rsstcp.MetricThroughput, rsstcp.MetricFairness),
		rsstcp.Duration(time.Second),
	).Run(rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range rep.Cells {
		fair, _ := c.Metric("fairness")
		fmt.Printf("%s fairness=%.2f\n", c.Key, fair.Mean)
	}
	// Output:
	// setpoint=0.5/alg=restricted fairness=1.00
	// setpoint=0.9/alg=restricted fairness=1.00
}

func TestRunQuickstart(t *testing.T) {
	res, err := rsstcp.Run(rsstcp.Options{
		Path:     rsstcp.PaperPath(),
		Flows:    []rsstcp.Flow{{Alg: rsstcp.Restricted}},
		Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput")
	}
	if res.Alg != rsstcp.Restricted {
		t.Errorf("Alg = %q, want restricted", res.Alg)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	_, err := rsstcp.Run(rsstcp.Options{Flows: []rsstcp.Flow{{Alg: "nope"}}})
	if err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestBuildExposesComponents(t *testing.T) {
	s, err := rsstcp.Build(rsstcp.Options{
		Flows:    []rsstcp.Flow{{Alg: rsstcp.Restricted}},
		Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Flows[0].Sender == nil || s.Flows[0].NIC == nil || s.Flows[0].RSS == nil {
		t.Error("scenario components not exposed")
	}
	res := s.Run()
	if res.Duration != time.Second {
		t.Errorf("Duration = %v, want 1s", res.Duration)
	}
}

func TestDefaultGainsFollowPaperRule(t *testing.T) {
	c := rsstcp.DefaultCritical()
	g := rsstcp.DefaultGains()
	if g.Kp != 0.33*c.Kc {
		t.Errorf("Kp = %v, want 0.33*Kc = %v", g.Kp, 0.33*c.Kc)
	}
	if g.Ti != time.Duration(0.5*float64(c.Tc)) {
		t.Errorf("Ti = %v, want 0.5*Tc", g.Ti)
	}
}

func TestPaperPathConstants(t *testing.T) {
	p := rsstcp.PaperPath()
	if p.Bottleneck != 100*rsstcp.Mbps || p.RTT != 60*time.Millisecond || p.TxQueueLen != 100 {
		t.Errorf("PaperPath = %+v", p)
	}
}

func TestFigure1Facade(t *testing.T) {
	fig, err := rsstcp.Figure1(rsstcp.PaperPath(), 3*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Seconds) != 4 {
		t.Errorf("rows = %d, want 4", len(fig.Seconds))
	}
	if fig.Table() == nil {
		t.Error("nil table")
	}
}

func TestRunCampaignFacade(t *testing.T) {
	res, err := rsstcp.RunCampaign(rsstcp.Grid{
		RTTs:       []time.Duration{20 * time.Millisecond, 60 * time.Millisecond},
		Algorithms: []rsstcp.Algorithm{rsstcp.Standard, rsstcp.Restricted},
		Duration:   time.Second,
	}, rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.ThroughputMbps.Mean <= 0 {
			t.Errorf("cell %s made no progress", c.Cell.Key())
		}
	}
	if rsstcp.DefaultCampaignWorkers() < 1 {
		t.Error("DefaultCampaignWorkers < 1")
	}
}

func TestNewCampaignBuilder(t *testing.T) {
	// FromGrid + extra axis + named metrics: the grid's axes carry over
	// and the new dimension stacks on top.
	c := rsstcp.NewCampaign(
		rsstcp.FromGrid(rsstcp.Grid{
			Algorithms: []rsstcp.Algorithm{rsstcp.Restricted},
			Duration:   time.Second,
		}),
		rsstcp.Sweep("setpoint", 0.5, 0.9),
		rsstcp.MeasureNamed("throughput_mbps", "t90_util_s"),
		rsstcp.Replicates(1),
		rsstcp.BaseSeed(11),
	)
	plan, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Axes) != 8 { // 7 grid axes + setpoint
		t.Fatalf("axes = %d, want 8", len(plan.Axes))
	}
	rep, err := c.Run(rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		if len(cell.Metrics) != 2 || cell.Metrics[0].Name != "throughput_mbps" || cell.Metrics[1].Name != "t90_util_s" {
			t.Errorf("cell %s metrics = %+v, want the two selected columns in order", cell.Key, cell.Metrics)
		}
		if thr, _ := cell.Metric("throughput_mbps"); thr.Mean <= 0 {
			t.Errorf("cell %s made no progress", cell.Key)
		}
	}
}

func TestFromGridKeepsEarlierKnobs(t *testing.T) {
	// A zero grid field must not clobber a knob set by an earlier option.
	plan, err := rsstcp.NewCampaign(
		rsstcp.Replicates(5),
		rsstcp.Duration(2*time.Second),
		rsstcp.FromGrid(rsstcp.Grid{Algorithms: []rsstcp.Algorithm{rsstcp.Standard}}),
	).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Replicates != 5 || plan.Duration != 2*time.Second {
		t.Errorf("grid defaults clobbered earlier options: replicates=%d duration=%v",
			plan.Replicates, plan.Duration)
	}
	// A grid that sets the knobs still wins over earlier options.
	plan, err = rsstcp.NewCampaign(
		rsstcp.Replicates(5),
		rsstcp.FromGrid(rsstcp.Grid{Replicates: 3}),
	).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Replicates != 3 {
		t.Errorf("explicit grid replicates ignored: %d", plan.Replicates)
	}
}

func TestNewCampaignBuilderSurfacesErrors(t *testing.T) {
	if _, err := rsstcp.NewCampaign(rsstcp.Sweep("bogus-axis", 1)).Run(rsstcp.CampaignOptions{}); err == nil {
		t.Error("unknown axis accepted")
	}
	if _, err := rsstcp.NewCampaign(
		rsstcp.Sweep("setpoint", 0.5),
		rsstcp.MeasureNamed("bogus-metric"),
	).Run(rsstcp.CampaignOptions{}); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := rsstcp.NewCampaign(rsstcp.Sweep("rtt", "not-a-duration")).Plan(); err == nil {
		t.Error("bad axis value accepted")
	}
}

func TestThroughputFacade(t *testing.T) {
	thr, err := rsstcp.Throughput(rsstcp.PaperPath(), rsstcp.Standard, 3*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 || thr > 100*rsstcp.Mbps {
		t.Errorf("throughput = %v outside (0, 100Mbps]", thr)
	}
}

// ExampleNewTopology assembles a two-bottleneck path with a congested
// reverse channel entirely through the facade: two hops of different rates,
// ACKs through a real 2 Mbps queue, per-hop drop counters in the result.
func ExampleNewTopology() {
	topo := rsstcp.NewTopology(
		rsstcp.HopAt(100*rsstcp.Mbps, 10*time.Millisecond, 250),
		rsstcp.HopAt(50*rsstcp.Mbps, 20*time.Millisecond, 120),
	).WithReverse(2*rsstcp.Mbps, 0, 50)
	res, err := rsstcp.Run(rsstcp.Options{
		Topology: topo,
		Flows:    []rsstcp.Flow{{Alg: rsstcp.Restricted}},
		Duration: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hops=%d bottleneck-second-hop=%v moving-data=%v\n",
		len(res.Hops), res.Hops[1].Utilization > res.Hops[0].Utilization, res.Throughput > 0)
	// Output: hops=2 bottleneck-second-hop=true moving-data=true
}

func TestTopologyFacade(t *testing.T) {
	t.Parallel()
	// A preset applies through the facade, cross traffic included.
	var opts rsstcp.Options
	if err := rsstcp.ApplyPreset(&opts, "parking-lot"); err != nil {
		t.Fatal(err)
	}
	opts.Flows = append([]rsstcp.Flow{{Alg: rsstcp.Restricted}}, opts.Flows...)
	opts.Duration = 2 * time.Second
	res, err := rsstcp.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("parking-lot hops = %d, want 3", len(res.Hops))
	}
	if err := rsstcp.ApplyPreset(&opts, "bogus"); err == nil {
		t.Error("unknown preset accepted")
	}

	// Route helpers resolve to the right span.
	r := rsstcp.HopSpan(1, 1)
	if r.FirstHop != 1 || r.Hops != 1 {
		t.Errorf("HopSpan = %+v", r)
	}
	cf := rsstcp.CrossFlow(rsstcp.Standard, r, time.Second)
	if !cf.Cross || cf.Route != r || cf.StartAt != time.Second {
		t.Errorf("CrossFlow = %+v", cf)
	}
}

func TestTopologyCampaignFacade(t *testing.T) {
	t.Parallel()
	// A custom topology pinned on a sweep through SweepTopology, refined by
	// the rbw axis, reporting the per-hop metrics.
	topo := rsstcp.NewTopology(
		rsstcp.HopAt(50*rsstcp.Mbps, 5*time.Millisecond, 120),
		rsstcp.HopAt(25*rsstcp.Mbps, 5*time.Millisecond, 60),
	)
	rep, err := rsstcp.NewCampaign(
		rsstcp.SweepTopology("two-bottleneck", *topo),
		rsstcp.Sweep("alg", rsstcp.Restricted),
		rsstcp.MeasureNamed("throughput_mbps", "hop_drops_max", "rev_drops"),
		rsstcp.Duration(time.Second),
	).Run(rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(rep.Cells))
	}
	if got := rep.Cells[0].Key; got != "topo=two-bottleneck/alg=restricted" {
		t.Errorf("cell key = %q", got)
	}
	if m, ok := rep.Cells[0].Metric("hop_drops_max"); !ok || m.N != 1 {
		t.Errorf("hop_drops_max summary = %+v, %v", m, ok)
	}
	// topo + a conflicting path axis must fail validation end to end.
	_, err = rsstcp.NewCampaign(
		rsstcp.SweepTopology("two-bottleneck", *topo),
		rsstcp.Sweep("bw", 10),
	).Run(rsstcp.CampaignOptions{})
	if err == nil {
		t.Error("topo + bw axis accepted")
	}
}

func TestChurnCampaignFacade(t *testing.T) {
	t.Parallel()
	// The tentpole surface: a load × fsize sweep under Poisson arrivals,
	// measuring completion-time metrics, assembled entirely through the
	// facade builder.
	rep, err := rsstcp.NewCampaign(
		rsstcp.Sweep("load", 0.5),
		rsstcp.Sweep("arrivals", "poisson:50"),
		rsstcp.Sweep("fsize", "exp:40k"),
		rsstcp.Sweep("alg", rsstcp.Restricted),
		rsstcp.Measure(rsstcp.MetricFCTMean, rsstcp.MetricFCTP99,
			rsstcp.MetricSlowdownMean, rsstcp.MetricFlowsDone),
		rsstcp.Duration(2*time.Second),
	).Run(rsstcp.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(rep.Cells))
	}
	if got := rep.Cells[0].Key; got != "load=0.5/arrivals=poisson:50/fsize=exp:40k/alg=restricted" {
		t.Errorf("cell key = %q", got)
	}
	if m, ok := rep.Cells[0].Metric("flows_done"); !ok || m.Mean <= 0 {
		t.Errorf("flows_done = %+v, %v; the sweep churned no flows", m, ok)
	}
	if m, ok := rep.Cells[0].Metric("fct_mean"); !ok || m.Mean <= 0 {
		t.Errorf("fct_mean = %+v, %v", m, ok)
	}
	// Churn axes after a template-mutating axis must fail validation.
	_, err = rsstcp.NewCampaign(
		rsstcp.Sweep("alg", rsstcp.Standard),
		rsstcp.Sweep("load", 0.5),
	).Run(rsstcp.CampaignOptions{})
	if err == nil {
		t.Error("alg-before-load plan accepted")
	}
}
