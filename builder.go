package rsstcp

import (
	"time"

	"rsstcp/internal/campaign"
)

// Generic sweep types, re-exported so callers compose campaigns without
// importing internal packages.
type (
	// Axis is a named sweep dimension: labeled Options mutators whose
	// cartesian product the campaign engine runs.
	Axis = campaign.Axis
	// AxisValue is one labeled point of an Axis.
	AxisValue = campaign.Value
	// Metric is a named per-replicate extractor func(Result) float64;
	// campaigns summarize a caller-chosen metric set per cell.
	Metric = campaign.Metric
	// Plan is a declarative generic campaign: axes × replicates, with a
	// metric set. Build one with NewCampaign or compile a Grid.
	Plan = campaign.Plan
	// Report is a completed generic campaign with per-cell metric
	// summaries and JSON/CSV/table exporters.
	Report = campaign.Report
	// ReportCell is one aggregated axis-product cell of a Report.
	ReportCell = campaign.ReportCell
	// MetricSummary is one metric's aggregate statistics in a ReportCell.
	MetricSummary = campaign.MetricSummary
)

// Stock metrics: the legacy six plus the new figures of merit.
var (
	// MetricThroughput is aggregate goodput over all flows, Mbps.
	MetricThroughput = campaign.MetricThroughputMbps
	// MetricStalls is the send-stall count summed over all flows.
	MetricStalls = campaign.MetricStalls
	// MetricCongSignals counts congestion episodes over all flows.
	MetricCongSignals = campaign.MetricCongSignals
	// MetricRouterDrops counts bottleneck-buffer drops.
	MetricRouterDrops = campaign.MetricRouterDrops
	// MetricInjectedDrops counts loss-injector drops.
	MetricInjectedDrops = campaign.MetricInjectedDrops
	// MetricUtilization is the bottleneck's cumulative busy fraction.
	MetricUtilization = campaign.MetricUtilization
	// MetricTimeouts is the RTO count summed over all flows.
	MetricTimeouts = campaign.MetricTimeouts
	// MetricFairness is Jain's fairness index over per-flow goodputs.
	MetricFairness = campaign.MetricFairness
	// MetricCollapses counts send-stall-induced cwnd collapses.
	MetricCollapses = campaign.MetricCollapses
	// MetricTimeToUtil90 is the virtual time (s) to 90% bottleneck
	// utilization.
	MetricTimeToUtil90 = campaign.MetricTimeToUtil90
	// MetricFCTMean is the mean flow completion time (s) over a run's
	// completed dynamic flows.
	MetricFCTMean = campaign.MetricFCTMean
	// MetricFCTP99 is the 99th-percentile flow completion time (s).
	MetricFCTP99 = campaign.MetricFCTP99
	// MetricSlowdownMean is mean FCT over the ideal transfer time.
	MetricSlowdownMean = campaign.MetricSlowdownMean
	// MetricFlowsDone counts dynamic flows completed within the run.
	MetricFlowsDone = campaign.MetricFlowsDone
)

// Axis helpers, re-exported for callers that build axes programmatically.
var (
	// NewAxis builds a stock axis by name from loosely typed values.
	NewAxis = campaign.NewAxis
	// ParseAxis builds a stock axis by name from CLI string tokens.
	ParseAxis = campaign.ParseAxis
	// StockAxisNames lists the stock axis names NewAxis/Sweep accept.
	StockAxisNames = campaign.StockAxisNames
	// IsLegacyAxis reports whether a name is one of the seven grid
	// dimensions.
	IsLegacyAxis = campaign.IsLegacyAxis
	// StockMetrics returns the default metric set.
	StockMetrics = campaign.StockMetrics
	// AllMetrics lists every registered metric.
	AllMetrics = campaign.Metrics
	// MetricNames lists the registered metric names, sorted.
	MetricNames = campaign.MetricNames
	// MetricsByName resolves registered metrics in the order requested.
	MetricsByName = campaign.MetricsByName
	// AxisValueOf builds a custom axis value from a label and mutator.
	AxisValueOf = campaign.Val
)

// Campaign is a sweep under construction: a builder over the generic axis
// engine. Assemble it with NewCampaign and functional options, then Run it.
//
//	rep, err := rsstcp.NewCampaign(
//		rsstcp.Sweep("setpoint", 0.5, 0.7, 0.9),
//		rsstcp.Sweep("rtt", "20ms", "60ms"),
//		rsstcp.Sweep("alg", rsstcp.Restricted),
//		rsstcp.Measure(rsstcp.MetricThroughput, rsstcp.MetricFairness),
//		rsstcp.Replicates(3),
//	).Run(rsstcp.CampaignOptions{})
type Campaign struct {
	plan campaign.Plan
	err  error
}

// CampaignOpt configures a Campaign under construction.
type CampaignOpt func(*Campaign)

// NewCampaign starts a generic campaign and applies the options in order.
// Construction errors (unknown axis or metric names, bad values) are
// deferred and reported by Run or Plan.
func NewCampaign(opts ...CampaignOpt) *Campaign {
	c := &Campaign{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Sweep adds a stock axis by name ("bw", "rtt", "rq", "ifq", "loss", "alg",
// "flows", "setpoint", "tick", "mss", "sack", "nic", "matchup", "bytes",
// "load", "arrivals", "fsize") from loosely typed values — native Go types
// or their string forms.
func Sweep(name string, values ...any) CampaignOpt {
	return func(c *Campaign) {
		a, err := campaign.NewAxis(name, values...)
		if err != nil {
			c.fail(err)
			return
		}
		c.plan.Axes = append(c.plan.Axes, a)
	}
}

// SweepAxis adds a prebuilt (possibly custom) axis.
func SweepAxis(axes ...Axis) CampaignOpt {
	return func(c *Campaign) {
		c.plan.Axes = append(c.plan.Axes, axes...)
	}
}

// Measure appends metrics to the campaign's report columns. Without any
// Measure option the stock set is reported.
func Measure(metrics ...Metric) CampaignOpt {
	return func(c *Campaign) {
		c.plan.Metrics = append(c.plan.Metrics, metrics...)
	}
}

// MeasureNamed appends registered metrics by name, in the order given.
func MeasureNamed(names ...string) CampaignOpt {
	return func(c *Campaign) {
		ms, err := campaign.MetricsByName(names...)
		if err != nil {
			c.fail(err)
			return
		}
		c.plan.Metrics = append(c.plan.Metrics, ms...)
	}
}

// Replicates sets the number of seeded repeats per cell (default 1).
func Replicates(n int) CampaignOpt {
	return func(c *Campaign) { c.plan.Replicates = n }
}

// Duration sets the virtual run length per replicate (default 25 s).
func Duration(d time.Duration) CampaignOpt {
	return func(c *Campaign) { c.plan.Duration = d }
}

// BaseSeed roots the derived replicate seeds (default 1). Seeds depend only
// on the base seed and each cell's canonical key, never on scheduling.
func BaseSeed(s uint64) CampaignOpt {
	return func(c *Campaign) { c.plan.BaseSeed = s }
}

// FromGrid seeds the campaign from a legacy Grid: its seven fields become
// stock axes, and its replicate/duration/seed knobs carry over only where
// the grid actually sets them (zero grid fields never clobber values chosen
// by other options). Later options may add further axes and metrics on top.
func FromGrid(g Grid) CampaignOpt {
	return func(c *Campaign) {
		c.plan.Axes = append(c.plan.Axes, g.Axes()...)
		if g.Replicates > 0 {
			c.plan.Replicates = g.Replicates
		}
		if g.Duration > 0 {
			c.plan.Duration = g.Duration
		}
		if g.BaseSeed != 0 {
			c.plan.BaseSeed = g.BaseSeed
		}
	}
}

func (c *Campaign) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Plan returns the assembled plan, or the first construction error.
func (c *Campaign) Plan() (Plan, error) {
	if c.err != nil {
		return Plan{}, c.err
	}
	return c.plan, nil
}

// Run executes the campaign on a bounded worker pool. Aggregation streams:
// each finished replicate folds into its cell's running summaries and is
// dropped unless CampaignOptions.RetainRuns keeps it, so memory scales with
// the cell count, not the run count. Aggregated results are byte-identical
// regardless of the worker count.
func (c *Campaign) Run(opts CampaignOptions) (*Report, error) {
	if c.err != nil {
		return nil, c.err
	}
	return campaign.ExecutePlan(c.plan, opts)
}

// RunPlan executes a generic campaign plan directly — the non-builder
// entry point, symmetric with RunCampaign for grids. See Campaign.Run for
// the streaming-aggregation behaviour.
func RunPlan(p Plan, opts CampaignOptions) (*Report, error) {
	return campaign.ExecutePlan(p, opts)
}
