// Package rsstcp reproduces "Restricted Slow-Start for TCP" (Allcock,
// Hegde, Kettimuthu; IEEE CLUSTER 2005): a sender-side TCP modification in
// which a PID controller paces congestion-window growth during slow-start
// off the host network-interface-queue (IFQ) occupancy, preventing the
// send-stall signals that 2.4-era Linux treated as congestion.
//
// The package is the public face of a complete discrete-event reproduction
// stack: a virtual-time engine, network elements, a host NIC/IFQ model, a
// TCP sender/receiver with pluggable congestion control, the PID controller
// with Ziegler-Nichols autotuning, and Web100-style instrumentation. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for paper-versus-
// measured results.
//
// Quick start:
//
//	res, err := rsstcp.Run(rsstcp.Options{
//		Path:  rsstcp.PaperPath(),
//		Flows: []rsstcp.Flow{{Alg: rsstcp.Restricted}},
//	})
//	fmt.Println(res.Throughput, res.Stalls)
//
// Parameter sweeps compose from generic axes and pluggable metrics (see
// NewCampaign); the fixed-field Grid remains as a shorthand for the classic
// seven-dimension sweep:
//
//	rep, err := rsstcp.NewCampaign(
//		rsstcp.Sweep("setpoint", 0.5, 0.7, 0.9),
//		rsstcp.Sweep("alg", rsstcp.Restricted),
//		rsstcp.Measure(rsstcp.MetricThroughput, rsstcp.MetricFairness),
//	).Run(rsstcp.CampaignOptions{})
package rsstcp

import (
	"time"

	"rsstcp/internal/campaign"
	"rsstcp/internal/core"
	"rsstcp/internal/experiment"
	"rsstcp/internal/pid"
	"rsstcp/internal/unit"
	"rsstcp/internal/zntune"
)

// Re-exported core types. The facade is intentionally thin: the types ARE
// the experiment harness types, so results round-trip without translation.
type (
	// Algorithm selects a sender's congestion behaviour.
	Algorithm = experiment.Algorithm
	// Path describes the network (bottleneck, RTT, router buffer, NIC
	// rate, txqueuelen).
	Path = experiment.PathConfig
	// Flow describes one connection (algorithm, size, start, tuning).
	Flow = experiment.FlowSpec
	// Options describes a full run: path, flows, duration, seed.
	Options = experiment.Config
	// Result summarizes a measured flow (Web100 stats, throughput,
	// stalls, utilization).
	Result = experiment.Result
	// Scenario is a built testbed, for callers that need the components.
	Scenario = experiment.Scenario
	// Table is a rendered result grid with text and CSV output.
	Table = experiment.Table
	// Figure1Data carries the cumulative send-stall series of Figure 1.
	Figure1Data = experiment.Figure1Result
	// Churn describes a dynamic flow-lifecycle workload: an arrival
	// process, a transfer-size distribution, and the template the dynamic
	// flows are stamped from.
	Churn = experiment.ChurnSpec
	// FlowRecord is one completed dynamic flow: start/end times, bytes,
	// retransmissions, slowdown and size class.
	FlowRecord = experiment.FlowRecord
	// FCTSummary is the streaming digest of a run's completed dynamic
	// flows (Result.FCT): completion-time quantiles, slowdowns and totals
	// over the full population, independent of the RetainFlows record cap.
	FCTSummary = experiment.FCTSummary
	// Gains are PID parameters in the paper's standard form.
	Gains = pid.Gains
	// Critical is a Ziegler-Nichols critical point (Kc, Tc).
	Critical = pid.Critical
	// TuneRule names a gain-derivation rule ("paper", "classic", ...).
	TuneRule = pid.Rule
	// TuneResult is the outcome of a Ziegler-Nichols tuning session.
	TuneResult = zntune.Result
	// Bandwidth is a link or goodput rate in bits per second.
	Bandwidth = unit.Bandwidth
	// Grid declares a parameter sweep: the cartesian product of bandwidth,
	// RTT, queue, loss, algorithm and flow-count axes, with replicates.
	Grid = campaign.Grid
	// CampaignOptions tunes sweep execution (worker count, progress).
	CampaignOptions = campaign.Options
	// CampaignResult is a completed sweep: per-cell replicate runs plus
	// aggregate statistics, with JSON/CSV/table exporters.
	CampaignResult = campaign.Result
	// CampaignCell is one aggregated grid cell of a CampaignResult.
	CampaignCell = campaign.CellResult
)

// Algorithms.
const (
	// Standard is 2.4-era Linux TCP, the paper's baseline.
	Standard = experiment.AlgStandard
	// Restricted is the paper's PID-paced slow-start.
	Restricted = experiment.AlgRestricted
	// Limited is RFC 3742 Limited Slow-Start.
	Limited = experiment.AlgLimited
	// StandardABC is standard slow-start with RFC 3465 byte counting.
	StandardABC = experiment.AlgStandardABC
	// HyStart is slow-start with the Hybrid Slow Start delay detector.
	HyStart = experiment.AlgHyStart
	// StallWait is the idealized no-collapse sender (ablation bound).
	StallWait = experiment.AlgStallWait
)

// Tuning rules.
const (
	RulePaper       = pid.RulePaper
	RuleClassic     = pid.RuleClassic
	RulePI          = pid.RulePI
	RuleNoOvershoot = pid.RuleNoOvershoot
)

// Bandwidth units.
const (
	Kbps = unit.Kbps
	Mbps = unit.Mbps
	Gbps = unit.Gbps
)

// PaperPath returns the testbed of the paper's Section 4: 100 Mbps,
// 60 ms RTT, txqueuelen 100.
func PaperPath() Path { return experiment.PaperPath() }

// DefaultGains returns the PID gains the paper's rule derives from the
// critical point measured on the paper path (see cmd/rsstcp-tune).
func DefaultGains() Gains { return pid.PaperGains(DefaultCritical()) }

// DefaultCritical returns the measured Ziegler-Nichols critical point of
// the cwnd→IFQ loop on the paper path.
func DefaultCritical() Critical { return core.DefaultCritical }

// Run builds and executes a scenario, returning the primary flow's result.
func Run(opts Options) (Result, error) {
	s, err := experiment.Build(opts)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// Build assembles a testbed without running it, for callers that want to
// attach probes or drive virtual time themselves.
func Build(opts Options) (*Scenario, error) { return experiment.Build(opts) }

// Figure1 regenerates the paper's Figure 1 (cumulative send-stall signals
// over time, standard vs restricted) on the given path.
func Figure1(path Path, duration time.Duration, seed uint64) (Figure1Data, error) {
	return experiment.Figure1(path, duration, seed)
}

// ThroughputTable regenerates the Section 4 throughput comparison.
func ThroughputTable(path Path, duration time.Duration, seed uint64) (*Table, error) {
	return experiment.ThroughputTable(path, duration, seed)
}

// Tune runs the Ziegler-Nichols closed-loop procedure of Section 3 on the
// path and derives gains with the given rule.
func Tune(path Path, duration time.Duration, rule TuneRule) (TuneResult, Gains, error) {
	return experiment.Tune(path, duration, rule)
}

// RunCampaign expands the grid into cells and executes every replicate on
// a bounded worker pool. Aggregated results are byte-identical regardless
// of the worker count.
func RunCampaign(g Grid, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Execute(g, opts)
}

// DefaultCampaignWorkers returns the worker-pool size used when
// CampaignOptions.Workers is zero (GOMAXPROCS).
func DefaultCampaignWorkers() int { return campaign.DefaultWorkers() }

// Throughput measures one algorithm's goodput on the path.
func Throughput(path Path, alg Algorithm, duration time.Duration, seed uint64) (Bandwidth, error) {
	return experiment.ThroughputOf(path, alg, duration, seed)
}
